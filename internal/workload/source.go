package workload

// Source draws a compiled workload's (op, key) stream and arrival times
// without a sim.Strand: it is the load generator of the sharded service
// tier (internal/service), where requests are produced at the *fleet*
// level — before any simulated machine is chosen — and only then routed
// to a shard. Two dedicated splitmix64 streams keep the same discipline
// the Driver enforces per strand:
//
//   - the op/key stream draws exactly one roll per op selection and the
//     distribution's draws per key, so the operation stream is a pure
//     function of (spec, seed) — independent of the arrival process and
//     of anything the service tier does with the requests;
//   - the arrival stream is separate, so changing the arrival shape (or
//     disabling arrivals entirely) never perturbs which ops and keys are
//     generated. ExtraKey draws from a third stream with the same
//     rationale: a cross-shard mix change must not shift the primary
//     stream.
type Source struct {
	c     *Compiled
	rng   prng // op/key stream
	extra prng // secondary-key stream (cross-shard mixes)
	arr   prng // arrival stream
	tNext int64
}

// Source binds the compiled workload to a fleet-level generator. The
// op/key stream seeds from seed, the secondary-key stream from seed+1
// folds, and the arrival stream from the spec's Arrival.Seed (folded with
// seed so two sources with different seeds are fully independent).
func (c *Compiled) Source(seed uint64) *Source {
	return &Source{
		c:     c,
		rng:   prng{state: seed*0x9e3779b9 + 0x1234567},
		extra: prng{state: seed*0x85ebca77 + 0xfedcba9},
		arr:   prng{state: arrivalSeed(c.arrSeed, 0) ^ (seed * 0xc2b2ae35)},
	}
}

// intn draws a uniform int in [0, n) from a stream.
func intn(r *prng, n int) int {
	return int(r.next() % uint64(n))
}

// keyFrom draws one key of the spec's distribution from the given stream.
func (s *Source) keyFrom(r *prng) uint64 {
	k := &s.c.keys
	switch k.Dist {
	case KeyUniform:
		return k.Offset + uint64(intn(r, k.Range))
	case KeyZipfian:
		u := float64(r.next()>>11) / (1 << 53)
		return k.Offset + uint64(s.c.zipf.draw(u))
	case KeyHotspot:
		if intn(r, 100) < k.HotPct {
			return k.Offset + uint64(intn(r, s.c.hotN))
		}
		return k.Offset + uint64(s.c.hotN) + uint64(intn(r, k.Range-s.c.hotN))
	}
	return 0 // KeyNone
}

// Next draws the next (op, key) pair in the spec's declared order from
// the primary stream.
func (s *Source) Next() (op int, key uint64) {
	if s.c.order == KeyThenOp {
		key = s.keyFrom(&s.rng)
		op = s.roll()
		return op, key
	}
	op = s.roll()
	if !s.c.ops[op].NoKey {
		key = s.keyFrom(&s.rng)
	}
	return op, key
}

// ExtraKey draws one additional key from the dedicated secondary stream —
// the second leg of a cross-shard transaction. Consuming it does not move
// the primary op/key stream.
func (s *Source) ExtraKey() uint64 { return s.keyFrom(&s.extra) }

// ExtraRoll draws a uniform int in [0, n) from the secondary stream (the
// cross-shard-fraction roll, coordinator-fault rolls, ...).
func (s *Source) ExtraRoll(n int) int { return intn(&s.extra, n) }

// roll selects an op by cumulative weight from the primary stream.
func (s *Source) roll() int {
	if s.c.roll == 0 {
		return 0
	}
	r := intn(&s.rng, s.c.roll)
	for i, cum := range s.c.cum {
		if r < cum {
			return i
		}
	}
	return len(s.c.cum) - 1
}

// NextArrival advances and returns the next arrival time in cycles. For a
// closed-loop spec (no arrival process) it returns the previous arrival
// time unchanged — back-to-back arrivals, so callers that always consume
// arrivals degrade gracefully.
func (s *Source) NextArrival() int64 {
	if s.c.meanGap <= 0 {
		return s.tNext
	}
	s.tNext += drawGap(&s.c.arrival, &s.arr, s.tNext)
	return s.tNext
}
