package workload

import (
	"fmt"
	"testing"
)

// legacyKVOp reproduces the pre-refactor driver switch verbatim:
//
//	switch { case r < pct: lookup; case r < pct+(100-pct)/2: insert; default: delete }
//
// This is the ground truth the declarative mix must match.
func legacyKVOp(r, pctLookup int) int {
	switch {
	case r < pctLookup:
		return OpLookup
	case r < pctLookup+(100-pctLookup)/2:
		return OpInsert
	default:
		return OpDelete
	}
}

// KVMix's split semantics are pinned: lookups get pctLookup points of the
// 100-roll, inserts floor((100-pct)/2), and deletes the remainder — so an
// odd non-lookup share gives deletes the extra point, exactly the legacy
// integer-threshold arithmetic.
func TestKVMixSplitSemantics(t *testing.T) {
	for pct := 0; pct <= 100; pct++ {
		ops := KVMix(pct)
		ins := (100 - pct) / 2
		del := 100 - pct - ins
		if ops[OpLookup].Weight != pct || ops[OpInsert].Weight != ins || ops[OpDelete].Weight != del {
			t.Fatalf("pct=%d: weights %d/%d/%d, want %d/%d/%d",
				pct, ops[OpLookup].Weight, ops[OpInsert].Weight, ops[OpDelete].Weight, pct, ins, del)
		}
		if sum := ops[0].Weight + ops[1].Weight + ops[2].Weight; sum != 100 {
			t.Fatalf("pct=%d: weights sum to %d, want 100", pct, sum)
		}
		if (100-pct)%2 == 1 && del != ins+1 {
			t.Fatalf("pct=%d: odd remainder must go to deletes (ins=%d del=%d)", pct, ins, del)
		}
	}
}

// Every roll value must select the same op the legacy switch selected, for
// every lookup percentage — the cumulative-threshold scan and the legacy
// comparison chain are the same function.
func TestKVMixMatchesLegacyThresholds(t *testing.T) {
	for pct := 0; pct <= 100; pct++ {
		c := MustCompile(KVSpec(Uniform(16), pct))
		for r := 0; r < 100; r++ {
			got := c.opForRoll(r)
			want := legacyKVOp(r, pct)
			if got != want {
				t.Fatalf("pct=%d r=%d: op %d, want %d", pct, r, got, want)
			}
		}
	}
}

// opForRoll exposes the cumulative scan for threshold tests.
func (c *Compiled) opForRoll(r int) int {
	for i, cum := range c.cum {
		if r < cum {
			return i
		}
	}
	return len(c.cum) - 1
}

func TestTenthsMix(t *testing.T) {
	ops := TenthsMix(2, 6)
	if ops[OpPut].Weight != 2 || ops[OpGet].Weight != 6 || ops[OpRemove].Weight != 2 {
		t.Fatalf("TenthsMix(2,6) = %+v", ops)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},                                    // no ops
		{Ops: []Op{{Weight: 1}, {Weight: 1}}}, // Roll=0 with two ops
		{Ops: []Op{{Weight: 3}}, Roll: 2},     // weights != roll
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Keys{Dist: KeyUniform}},                    // uniform range 0
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Zipfian(100, 0)},                           // theta out of range
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Zipfian(100, 1)},                           // theta out of range
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Zipfian(1, 0.9)},                           // range too small
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Hotspot(100, 0, 50)},                       // hot frac 0
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Hotspot(100, 0.1, 101)},                    // hot pct > 100
		{Ops: []Op{{Weight: 1}}, Roll: 1, Keys: Uniform(4), Arrival: Arrival{MeanGap: -1}}, // negative gap
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, sp)
		}
	}
	good := Spec{Ops: KVMix(50), Roll: 100, Keys: Zipfian(1024, 0.99), Arrival: Arrival{MeanGap: 500, Seed: 7}}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// Keys.String and Arrival.String are cache-key components; pin their
// canonical forms so cache entries never silently alias across formats.
func TestCanonicalStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Uniform(256).String(), "uniform:256"},
		{UniformOffset(256, 1).String(), "uniform:256+1"},
		{Zipfian(4096, 0.99).String(), "zipf:4096:0.99"},
		{Hotspot(1000, 0.1, 90).String(), "hot:1000:0.1:90"},
		{Keys{}.String(), "none"},
		{Arrival{}.String(), "closed"},
		{Arrival{MeanGap: 800, Seed: 3}.String(), "open:800:3"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("canonical string %q, want %q", c.got, c.want)
		}
	}
}

// PrepopHalf and its shuffled twin cover the same key set; the shuffle is
// deterministic in the seed.
func TestPrepop(t *testing.T) {
	plain := PrepopHalf(256)
	if len(plain) != 128 || plain[0] != 0 || plain[127] != 254 {
		t.Fatalf("PrepopHalf: len=%d first=%d last=%d", len(plain), plain[0], plain[127])
	}
	a := PrepopHalfShuffled(256, 7)
	b := PrepopHalfShuffled(256, 7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("shuffle not deterministic in the seed")
	}
	seen := map[uint64]bool{}
	for _, k := range a {
		if k%2 != 0 || seen[k] {
			t.Fatalf("bad shuffled key %d", k)
		}
		seen[k] = true
	}
	if len(seen) != 128 {
		t.Fatalf("shuffled set has %d keys, want 128", len(seen))
	}
	if fmt.Sprint(a) == fmt.Sprint(plain) {
		t.Fatal("shuffle left keys in ascending order")
	}
}
