package workload

import "math"

// zipfParams holds the precomputed constants of Gray et al.'s zipfian
// generator ("Quickly Generating Billion-Record Synthetic Databases",
// SIGMOD '94) — the same construction YCSB's ZipfianGenerator uses. The
// constants depend only on (n, theta), so they are computed once at
// Compile time and shared read-only by every strand.
type zipfParams struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, the rank-1 threshold
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func newZipf(n int, theta float64) zipfParams {
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return zipfParams{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// draw maps one uniform sample u in [0,1) to a zipf-distributed rank in
// [0, n): rank 0 is the hottest key. Pure float64 math on precomputed
// constants — deterministic for a given u.
func (z *zipfParams) draw(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}
