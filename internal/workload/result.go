package workload

import (
	"fmt"
	"strings"

	"rocktm/internal/core"
	"rocktm/internal/obs"
)

// Result is what one timed workload run reports. It replaces the three
// near-identical per-figure throughput paths (the bench layer's runResult,
// the MSF sweep's inline seconds math and the ad-hoc per-cell Point
// assembly) with one helper every figure shares.
type Result struct {
	// Ops is the total completed operation count across all strands.
	Ops uint64
	// Seconds is the run's simulated wall-clock time.
	Seconds float64
	// Stats is the synchronization system's cumulative statistics (may be
	// nil for systems that keep none).
	Stats *core.Stats
	// Lat is the per-operation latency digest when the run recorded one.
	Lat *obs.LatencySummary
}

// NewResult assembles a Result; lat may be nil.
func NewResult(ops uint64, seconds float64, stats *core.Stats, lat *obs.LatencyRecorder) Result {
	r := Result{Ops: ops, Seconds: seconds, Stats: stats}
	if lat != nil {
		s := lat.Summarize()
		r.Lat = &s
	}
	return r
}

// Throughput returns operations per microsecond of simulated time — the
// y axis of every throughput figure.
func (r Result) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / (r.Seconds * 1e6)
}

// Summary renders the annotations the paper quotes alongside its graphs:
// the hardware-retry fraction, the lock/STM fallback fraction, and the
// dominant CPS failure value.
func (r Result) Summary() string { return StatsSummary(r.Stats) }

// StatsSummary is Summary for a bare stats struct (nil-safe).
func StatsSummary(st *core.Stats) string {
	if st == nil {
		return ""
	}
	parts := []string{}
	if st.HWAttempts > 0 {
		parts = append(parts, fmt.Sprintf("retry=%.1f%%", 100*st.RetryFraction()))
	}
	if st.Ops > 0 && st.LockAcquires > 0 {
		parts = append(parts, fmt.Sprintf("lock=%.2f%%", 100*float64(st.LockAcquires)/float64(st.Ops)))
	}
	if st.Ops > 0 && st.SWCommits > 0 {
		parts = append(parts, fmt.Sprintf("sw=%.2f%%", 100*float64(st.SWCommits)/float64(st.Ops)))
	}
	if st.CPSHist != nil && st.CPSHist.Total() > 0 {
		dom, frac := st.CPSHist.Dominant()
		parts = append(parts, fmt.Sprintf("cps[%s]=%.0f%%", dom, 100*frac))
	}
	return strings.Join(parts, " ")
}
