package workload

import (
	"testing"
)

// The shaped arrivals render canonically — these strings enter
// runner.Spec.Params as cache keys, so the forms are pinned — and the
// constant form stays byte-identical to the pre-shape rendering.
func TestArrivalCanonicalStrings(t *testing.T) {
	cases := []struct {
		a    Arrival
		want string
	}{
		{Arrival{}, "closed"},
		{Arrival{MeanGap: 200, Seed: 9}, "open:200:9"},
		{Diurnal(512, 7, 1e6, 0.5), "diurnal:512:7:1e+06:0.5"},
		{FlashCrowd(256, 3, 50000, 20000, 8), "flash:256:3:50000:20000:8"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Shape parameters are validated through Spec.Validate.
func TestArrivalShapeValidation(t *testing.T) {
	base := Spec{Ops: KVMix(50), Roll: 100, Keys: Uniform(64)}
	bad := []Arrival{
		{MeanGap: -1},
		Diurnal(100, 1, 0, 0.5),          // Period <= 0
		Diurnal(100, 1, 1e6, 1.0),        // Amplitude out of [0,1)
		Diurnal(100, 1, 1e6, -0.1),       // negative Amplitude
		FlashCrowd(100, 1, 0, 10, 0),     // BurstFactor <= 0
		FlashCrowd(100, 1, 0, -10, 2),    // negative BurstLen
		{MeanGap: 100, Shape: Shape(99)}, // unknown shape
	}
	for i, a := range bad {
		sp := base
		sp.Arrival = a
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid arrival accepted", i, a)
		}
	}
	for i, a := range []Arrival{
		{},
		{MeanGap: 100, Seed: 1},
		Diurnal(100, 1, 1e6, 0.9),
		FlashCrowd(100, 1, 0, 0, 2), // zero-length burst is legal (no-op)
	} {
		sp := base
		sp.Arrival = a
		if err := sp.Validate(); err != nil {
			t.Errorf("case %d (%+v): valid arrival rejected: %v", i, a, err)
		}
	}
}

// Shaped arrivals are seed-stable: the same spec produces the same
// schedule, and different arrival seeds produce different schedules —
// for both new shapes.
func TestShapedArrivalSeedStability(t *testing.T) {
	shapes := map[string]func(seed uint64) Arrival{
		"diurnal": func(seed uint64) Arrival { return Diurnal(300, seed, 1e5, 0.8) },
		"flash":   func(seed uint64) Arrival { return FlashCrowd(300, seed, 2e4, 4e4, 10) },
	}
	for name, mk := range shapes {
		schedule := func(seed uint64) []int64 {
			sp := Spec{Ops: KVMix(50), Roll: 100, Keys: Uniform(64), Arrival: mk(seed)}
			src := MustCompile(sp).Source(1)
			var out []int64
			for i := 0; i < 300; i++ {
				out = append(out, src.NextArrival())
			}
			return out
		}
		a, b := schedule(1), schedule(1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at arrival %d: %d vs %d", name, i, a[i], b[i])
			}
		}
		c := schedule(2)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical schedules", name)
		}
	}
}

// The rate envelope must never perturb the op/key stream: a diurnal or
// flash-crowd run draws exactly the ops and keys of the closed-loop twin
// (the arrival stream is separate — same discipline as plain open loop).
func TestShapedArrivalsDoNotPerturbOpStream(t *testing.T) {
	closed := Spec{Ops: KVMix(30), Roll: 100, Keys: Zipfian(512, 0.99)}
	for name, a := range map[string]Arrival{
		"diurnal": Diurnal(700, 42, 5e4, 0.9),
		"flash":   FlashCrowd(700, 42, 1e4, 3e4, 16),
	} {
		shaped := closed
		shaped.Arrival = a
		want := digest(collect(t, MustCompile(closed), 2, 400, 1))
		got := digest(collect(t, MustCompile(shaped), 2, 400, 1))
		if got != want {
			t.Errorf("%s arrivals perturbed the op/key stream: %s vs %s", name, got, want)
		}
	}
}

// The flash-crowd envelope actually compresses gaps inside the burst
// window: mean gap during the burst is far below the mean outside it.
func TestFlashCrowdCompressesBurstWindow(t *testing.T) {
	const at, length, factor = 1e5, 1e5, 20.0
	sp := Spec{Ops: KVMix(50), Roll: 100, Keys: Uniform(64),
		Arrival: FlashCrowd(1000, 3, at, length, factor)}
	src := MustCompile(sp).Source(1)
	var inBurst, outBurst []int64
	prev := int64(0)
	for i := 0; i < 4000; i++ {
		t0 := src.NextArrival()
		gap := t0 - prev
		ft := float64(prev)
		if ft >= at && ft < at+length {
			inBurst = append(inBurst, gap)
		} else {
			outBurst = append(outBurst, gap)
		}
		prev = t0
	}
	mean := func(xs []int64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s int64
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	mi, mo := mean(inBurst), mean(outBurst)
	if len(inBurst) < 100 || len(outBurst) < 100 {
		t.Fatalf("burst window poorly sampled: %d in, %d out", len(inBurst), len(outBurst))
	}
	if mi*4 > mo {
		t.Fatalf("burst mean gap %.0f not well below outside mean %.0f (factor %g)", mi, mo, factor)
	}
}

// The diurnal envelope modulates the schedule: with a large amplitude the
// arrival schedule differs from the constant-shape schedule with the same
// seed, but with amplitude 0 it is bit-identical (the envelope divides by
// exactly 1).
func TestDiurnalEnvelopeEffect(t *testing.T) {
	schedule := func(a Arrival) []int64 {
		sp := Spec{Ops: KVMix(50), Roll: 100, Keys: Uniform(64), Arrival: a}
		src := MustCompile(sp).Source(1)
		var out []int64
		for i := 0; i < 500; i++ {
			out = append(out, src.NextArrival())
		}
		return out
	}
	flat := schedule(Arrival{MeanGap: 300, Seed: 7})
	zero := schedule(Diurnal(300, 7, 1e5, 0))
	for i := range flat {
		if flat[i] != zero[i] {
			t.Fatalf("amplitude-0 diurnal diverged from constant at %d: %d vs %d", i, zero[i], flat[i])
		}
	}
	mod := schedule(Diurnal(300, 7, 1e5, 0.9))
	same := true
	for i := range flat {
		if flat[i] != mod[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("amplitude-0.9 diurnal schedule identical to constant schedule")
	}
}

// Source mirrors the Driver's stream-separation discipline: the primary
// (op, key) stream is a pure function of (spec, seed) — consuming
// arrivals and extra keys does not move it — and the extra stream is
// independent of the primary.
func TestSourceStreamSeparation(t *testing.T) {
	sp := Spec{Ops: KVMix(30), Roll: 100, Keys: Zipfian(512, 0.99),
		Arrival: Diurnal(300, 7, 1e5, 0.5)}
	c := MustCompile(sp)
	plain := c.Source(1)
	noisy := c.Source(1)
	for i := 0; i < 500; i++ {
		// The noisy twin consumes arrivals and extra draws between ops.
		noisy.NextArrival()
		noisy.ExtraKey()
		noisy.ExtraRoll(100)
		op1, k1 := plain.Next()
		op2, k2 := noisy.Next()
		if op1 != op2 || k1 != k2 {
			t.Fatalf("primary stream perturbed at op %d: (%d,%d) vs (%d,%d)", i, op1, k1, op2, k2)
		}
	}
	// Distinct source seeds give distinct primary streams.
	a := c.Source(1)
	b := c.Source(2)
	diff := false
	for i := 0; i < 100; i++ {
		o1, k1 := a.Next()
		o2, k2 := b.Next()
		if o1 != o2 || k1 != k2 {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("source seeds 1 and 2 produced identical primary streams")
	}
}

// Source keys stay in range for every distribution, and closed-loop
// NextArrival degrades to back-to-back (constant) arrivals.
func TestSourceKeyRangeAndClosedLoop(t *testing.T) {
	for name, keys := range map[string]Keys{
		"uniform": Uniform(256),
		"zipf":    Zipfian(256, 0.9),
		"hotspot": Hotspot(256, 0.1, 90),
	} {
		src := MustCompile(KVSpec(keys, 50)).Source(3)
		for i := 0; i < 2000; i++ {
			_, key := src.Next()
			if key >= 256 {
				t.Fatalf("%s: key %d out of range", name, key)
			}
		}
	}
	src := MustCompile(KVSpec(Uniform(16), 50)).Source(1)
	if a1, a2 := src.NextArrival(), src.NextArrival(); a1 != 0 || a2 != 0 {
		t.Fatalf("closed-loop arrivals = %d,%d, want 0,0", a1, a2)
	}
}
