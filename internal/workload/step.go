// Continuation-machine execution (sim.RunStepped) for the workload driver:
// Run becomes a resumable step function whose only simulated yield point of
// its own is the open-loop arrival idle, with each operation's body supplied
// as a core.StepBlock. Host draws (inter-arrival gap, op roll, key) fire
// exactly once per operation, in the same order as Run, so both drivers
// consume identical RNG streams.
package workload

import (
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// stepRun states.
const (
	wkTop uint8 = iota
	wkArrive
	wkBody
)

// stepRun is one strand's Run loop as a continuation machine.
type stepRun struct {
	d    *Driver
	n    int
	arm  func(i, op int, key uint64) core.StepBlock
	open bool

	st    uint8
	i     int
	start int64
	sub   core.StepBlock
}

func (r *stepRun) step() bool {
	d := r.d
	for {
		switch r.st {
		case wkTop:
			if r.i >= r.n {
				return true
			}
			r.start = d.s.Clock()
			if r.open {
				d.tNext += d.gap()
				if d.tNext > r.start {
					r.st = wkArrive
					continue
				}
			}
			r.launch()
		case wkArrive:
			// The strand is idle until the next arrival; tNext and start are
			// saved, so a resume re-charges the identical idle span.
			d.s.Advance(d.tNext - r.start)
			if d.s.YieldPending() {
				return false
			}
			r.launch()
		default: // wkBody
			if !r.sub.Step() {
				return false
			}
			if d.lat != nil {
				d.lat.Record(d.s.Clock() - r.start)
			}
			if d.ws != nil {
				d.ws.RecordLatencyAt(d.s.Clock(), d.s.Clock()-r.start)
			}
			r.i++
			r.st = wkTop
		}
	}
}

// launch draws the next (op, key) pair and arms its step block — host work
// that fires exactly once per operation. As in Run, open-loop latency is
// measured from the arrival time.
func (r *stepRun) launch() {
	if r.open {
		r.start = r.d.tNext
	}
	op, key := r.d.next()
	r.sub = r.arm(r.i, op, key)
	r.st = wkBody
}

// RunStepped is Run as a continuation body for sim.Machine.RunStepped:
// arm(i, op, key) arms operation i's step block in place of do's direct
// execution. The driver must outlive the returned step function.
func (d *Driver) RunStepped(n int, arm func(i, op int, key uint64) core.StepBlock) sim.StepFn {
	r := &stepRun{d: d, n: n, arm: arm, open: d.c.meanGap > 0}
	return r.step
}
