// Package dcas implements the double compare-and-swap of Section 4 — a
// two-location generalization of CAS built from a tiny best-effort
// hardware transaction — and the two sorted-list set implementations the
// paper compares: one whose removal path uses DCAS, and a hand-crafted
// lock-free list in the style of java.util.concurrent's (Harris–Michael
// marked pointers). The paper's finding is that the DCAS versions match
// the carefully hand-crafted originals while being far simpler.
package dcas

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/locktm"
	"rocktm/internal/obs"
	"rocktm/internal/rock"
	"rocktm/internal/sim"
)

// DCAS performs double compare-and-swap operations. Hardware transactions
// provide the fast path; a lock (elided by that very fast path, so the two
// compose correctly) guarantees progress.
type DCAS struct {
	lock  *locktm.SpinLock
	stats *core.Stats
	// MaxAttempts is the number of hardware tries before the lock fallback.
	MaxAttempts int
}

// New builds a DCAS provider.
func New(m *sim.Machine) *DCAS {
	return &DCAS{lock: locktm.NewSpinLock(m.Mem()), stats: core.NewStats(), MaxAttempts: 12}
}

// Stats returns cumulative attempt statistics.
func (d *DCAS) Stats() *core.Stats { return d.stats }

// Publish registers the provider's statistics with the unified metrics
// registry under the "dcas" subsystem.
func (d *DCAS) Publish(reg *obs.Registry) {
	reg.Register("dcas", func() obs.Sample { return d.stats.Sample() })
}

// Do atomically checks *a1==o1 && *a2==o2 and, if both hold, stores n1 and
// n2. It reports whether the swap happened.
func (d *DCAS) Do(s *sim.Strand, a1 sim.Addr, o1, n1 sim.Word, a2 sim.Addr, o2, n2 sim.Word) bool {
	lockAddr := d.lock.Addr()
	d.stats.HWBlocks++
	for attempt := 0; attempt < d.MaxAttempts; attempt++ {
		d.stats.HWAttempts++
		swapped := false
		ok, c := rock.Try(s, func(t rock.Txn) {
			if t.Load(lockAddr) != 0 {
				t.Abort()
			}
			v1 := t.Load(a1)
			v2 := t.Load(a2)
			if v1 != o1 || v2 != o2 {
				swapped = false
				return
			}
			t.Store(a1, n1)
			t.Store(a2, n2)
			swapped = true
		})
		if ok {
			d.stats.HWCommits++
			d.stats.Ops++
			return swapped
		}
		d.stats.RecordFailure(c)
		core.Backoff(s, attempt)
	}
	// Guaranteed-progress fallback under the (elided) lock.
	s.TraceEvent(obs.EvFallback, uint64(lockAddr))
	d.lock.Acquire(s)
	d.stats.LockAcquires++
	d.stats.Ops++
	swapped := false
	if s.Load(a1) == o1 && s.Load(a2) == o2 {
		s.Store(a1, n1)
		s.Store(a2, n2)
		swapped = true
	}
	d.lock.Release(s)
	return swapped
}

// ---- Sorted list sets ----

// Node layout for both lists. The next word of the Harris–Michael list
// carries the logical-deletion mark in its low bit (node addresses are
// line-aligned, so low bits are free).
const (
	fKey      = 0
	fNext     = 1
	nodeWords = sim.WordsPerLine

	deadNext = ^sim.Word(0) // poisons the next pointer of a DCAS-removed node
)

var pcListWalk = core.PC("dcas.list.walk")

// DCASList is a sorted singly linked set whose remove uses DCAS to unlink
// the node and poison its next pointer in one atomic step — the property
// that makes traversals safe without marked-pointer machinery.
type DCASList struct {
	head sim.Addr // head node (sentinel with key 0 reserved)
	pool *alloc.Pool
	d    *DCAS
}

// NewDCASList builds an empty set with the given node capacity.
func NewDCASList(m *sim.Machine, d *DCAS, capacity int) *DCASList {
	l := &DCASList{pool: alloc.NewPool(m, nodeWords, capacity+1), d: d}
	l.head = l.pool.Prealloc(m.Mem())
	m.Mem().Poke(l.head+fKey, 0)
	m.Mem().Poke(l.head+fNext, 0)
	return l
}

// search returns (pred, curr) such that pred.key < key <= curr.key, with
// curr==0 at the tail; it restarts on poisoned links.
func (l *DCASList) search(s *sim.Strand, key uint64) (sim.Addr, sim.Word) {
retry:
	pred := l.head
	curr := s.Load(pred + fNext)
	for {
		s.Branch(pcListWalk, curr != 0)
		if curr == 0 || curr == deadNext {
			if curr == deadNext {
				goto retry
			}
			return pred, 0
		}
		ck := s.Load(sim.Addr(curr) + fKey)
		if ck >= key {
			return pred, curr
		}
		pred = sim.Addr(curr)
		curr = s.Load(pred + fNext)
	}
}

// Insert adds key, reporting whether it was absent.
func (l *DCASList) Insert(s *sim.Strand, key uint64) bool {
	for {
		pred, curr := l.search(s, key)
		if curr != 0 && s.Load(sim.Addr(curr)+fKey) == key {
			return false
		}
		node := l.pool.Get(s)
		s.Store(node+fKey, key)
		s.Store(node+fNext, curr)
		if _, ok := s.CAS(pred+fNext, curr, sim.Word(node)); ok {
			return true
		}
		l.pool.Put(s, node)
	}
}

// Remove deletes key, reporting whether it was present. The unlink and the
// poisoning of the removed node's next pointer happen in one DCAS.
func (l *DCASList) Remove(s *sim.Strand, key uint64) bool {
	for {
		pred, curr := l.search(s, key)
		if curr == 0 || s.Load(sim.Addr(curr)+fKey) != key {
			return false
		}
		next := s.Load(sim.Addr(curr) + fNext)
		if next == deadNext {
			continue // someone else is removing it; re-examine
		}
		if l.d.Do(s, pred+fNext, curr, next, sim.Addr(curr)+fNext, next, deadNext) {
			return true
		}
	}
}

// Contains reports membership.
func (l *DCASList) Contains(s *sim.Strand, key uint64) bool {
	_, curr := l.search(s, key)
	return curr != 0 && s.Load(sim.Addr(curr)+fKey) == key
}

// CountDirect walks the list with no cycle accounting (validation helper).
func (l *DCASList) CountDirect(mem *sim.Memory) int {
	n := 0
	for p := mem.Peek(l.head + fNext); p != 0; p = mem.Peek(sim.Addr(p) + fNext) {
		n++
	}
	return n
}

// HMList is the hand-crafted baseline: a Harris–Michael lock-free sorted
// list with logical-deletion marks in the next pointers, the design
// java.util.concurrent's sets are built from.
type HMList struct {
	head sim.Addr
	pool *alloc.Pool
}

// NewHMList builds an empty set with the given node capacity.
func NewHMList(m *sim.Machine, capacity int) *HMList {
	l := &HMList{pool: alloc.NewPool(m, nodeWords, capacity+1)}
	l.head = l.pool.Prealloc(m.Mem())
	m.Mem().Poke(l.head+fKey, 0)
	m.Mem().Poke(l.head+fNext, 0)
	return l
}

const markBit sim.Word = 1

func marked(w sim.Word) bool        { return w&markBit != 0 }
func clearMark(w sim.Word) sim.Word { return w &^ markBit }

// search finds (pred, curr) with pred.key < key <= curr.key, physically
// unlinking marked nodes it passes (the Michael helping rule).
func (l *HMList) search(s *sim.Strand, key uint64) (sim.Addr, sim.Word) {
retry:
	pred := l.head
	curr := clearMark(s.Load(pred + fNext))
	for {
		s.Branch(pcListWalk, curr != 0)
		if curr == 0 {
			return pred, 0
		}
		next := s.Load(sim.Addr(curr) + fNext)
		if marked(next) {
			// curr is logically deleted: help unlink it.
			if _, ok := s.CAS(pred+fNext, curr, clearMark(next)); !ok {
				goto retry
			}
			curr = clearMark(next)
			continue
		}
		ck := s.Load(sim.Addr(curr) + fKey)
		if ck >= key {
			return pred, curr
		}
		pred = sim.Addr(curr)
		curr = clearMark(next)
	}
}

// Insert adds key, reporting whether it was absent.
func (l *HMList) Insert(s *sim.Strand, key uint64) bool {
	for {
		pred, curr := l.search(s, key)
		if curr != 0 && s.Load(sim.Addr(curr)+fKey) == key {
			return false
		}
		node := l.pool.Get(s)
		s.Store(node+fKey, key)
		s.Store(node+fNext, curr)
		if _, ok := s.CAS(pred+fNext, curr, sim.Word(node)); ok {
			return true
		}
		l.pool.Put(s, node)
	}
}

// Remove deletes key, reporting whether it was present: first mark, then
// unlink.
func (l *HMList) Remove(s *sim.Strand, key uint64) bool {
	for {
		pred, curr := l.search(s, key)
		if curr == 0 || s.Load(sim.Addr(curr)+fKey) != key {
			return false
		}
		next := s.Load(sim.Addr(curr) + fNext)
		if marked(next) {
			continue
		}
		if _, ok := s.CAS(sim.Addr(curr)+fNext, next, next|markBit); !ok {
			continue
		}
		// Physical unlink; if it fails a later search will help.
		s.CAS(pred+fNext, curr, next)
		return true
	}
}

// Contains reports membership.
func (l *HMList) Contains(s *sim.Strand, key uint64) bool {
	_, curr := l.search(s, key)
	return curr != 0 && s.Load(sim.Addr(curr)+fKey) == key
}

// CountDirect counts unmarked nodes (validation helper).
func (l *HMList) CountDirect(mem *sim.Memory) int {
	n := 0
	for p := clearMark(mem.Peek(l.head + fNext)); p != 0; {
		next := mem.Peek(sim.Addr(p) + fNext)
		if !marked(next) {
			n++
		}
		p = clearMark(next)
	}
	return n
}
