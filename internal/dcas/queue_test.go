package dcas

import (
	"testing"

	"rocktm/internal/sim"
)

type fifo interface {
	Enqueue(s *sim.Strand, val sim.Word)
	Dequeue(s *sim.Strand) (sim.Word, bool)
}

func testQueueFIFO(t *testing.T, build func(m *sim.Machine) fifo) {
	t.Helper()
	m := newMachine(1)
	q := build(m)
	m.Run(func(s *sim.Strand) {
		if _, ok := q.Dequeue(s); ok {
			t.Error("dequeue from empty succeeded")
		}
		for i := sim.Word(1); i <= 100; i++ {
			q.Enqueue(s, i)
		}
		for i := sim.Word(1); i <= 100; i++ {
			got, ok := q.Dequeue(s)
			if !ok || got != i {
				t.Fatalf("dequeue = (%d,%v), want (%d,true)", got, ok, i)
			}
		}
		if _, ok := q.Dequeue(s); ok {
			t.Error("drained queue not empty")
		}
	})
}

func TestDCASQueueFIFO(t *testing.T) {
	testQueueFIFO(t, func(m *sim.Machine) fifo { return NewDCASQueue(m, New(m), 256) })
}

func TestMSQueueFIFO(t *testing.T) {
	testQueueFIFO(t, func(m *sim.Machine) fifo { return NewMSQueue(m, 256) })
}

// testQueueConcurrent runs producers and consumers concurrently; every
// enqueued value must be dequeued exactly once, and per-producer order must
// be preserved (FIFO per source).
func testQueueConcurrent(t *testing.T, build func(m *sim.Machine) fifo) {
	t.Helper()
	const threads, per = 6, 120
	m := newMachine(threads)
	q := build(m)
	consumed := make([][]sim.Word, threads)
	m.Run(func(s *sim.Strand) {
		id := sim.Word(s.ID())
		if s.ID()%2 == 0 { // producer
			for i := sim.Word(0); i < per; i++ {
				q.Enqueue(s, id<<32|i)
			}
		} else { // consumer: pop until it has per items or producers drain
			for len(consumed[s.ID()]) < per {
				if v, ok := q.Dequeue(s); ok {
					consumed[s.ID()] = append(consumed[s.ID()], v)
				} else {
					s.Advance(200)
				}
			}
		}
	})
	perProducerLast := map[sim.Word]sim.Word{}
	seen := map[sim.Word]bool{}
	total := 0
	for _, list := range consumed {
		for _, v := range list {
			if seen[v] {
				t.Fatalf("value %#x dequeued twice", v)
			}
			seen[v] = true
			total++
		}
	}
	// Per-producer FIFO: within each consumer's stream, sequence numbers of
	// one producer must ascend.
	for _, list := range consumed {
		last := map[sim.Word]int64{}
		for _, v := range list {
			src, seq := v>>32, int64(v&0xffffffff)
			if prev, ok := last[src]; ok && seq <= prev {
				t.Fatalf("producer %d reordered: %d after %d", src, seq, prev)
			}
			last[src] = seq
		}
	}
	_ = perProducerLast
	if total != threads/2*per {
		t.Fatalf("consumed %d values, want %d", total, threads/2*per)
	}
}

func TestDCASQueueConcurrent(t *testing.T) {
	testQueueConcurrent(t, func(m *sim.Machine) fifo { return NewDCASQueue(m, New(m), 1<<12) })
}

func TestMSQueueConcurrent(t *testing.T) {
	testQueueConcurrent(t, func(m *sim.Machine) fifo { return NewMSQueue(m, 1<<12) })
}
