package dcas

import (
	"rocktm/internal/alloc"
	"rocktm/internal/core"
	"rocktm/internal/sim"
)

// The paper's Section 4 reimplements two java.util.concurrent structures
// over the HTM-backed DCAS. The second pair here is a FIFO queue: the
// hand-crafted baseline is the Michael–Scott lock-free queue (the design
// behind java.util.concurrent.ConcurrentLinkedQueue), whose subtlety is
// the lagging tail pointer and the helping protocol around it; the DCAS
// version updates the tail node's link and the tail pointer in one atomic
// step, eliminating the intermediate states and the helping entirely —
// the simplification DCAS was historically advocated for.

// Queue node layout.
const (
	qVal           = 0
	qNext          = 1
	queueNodeWords = sim.WordsPerLine
)

var pcQueueWalk = core.PC("dcas.queue.walk")

// DCASQueue is the DCAS-simplified FIFO queue.
type DCASQueue struct {
	head sim.Addr // word holding the head node address
	tail sim.Addr // word holding the tail node address
	pool *alloc.Pool
	d    *DCAS
}

// NewDCASQueue builds an empty queue with the given node capacity.
func NewDCASQueue(m *sim.Machine, d *DCAS, capacity int) *DCASQueue {
	q := &DCASQueue{
		head: m.Mem().AllocLines(sim.WordsPerLine),
		tail: m.Mem().AllocLines(sim.WordsPerLine),
		pool: alloc.NewPool(m, queueNodeWords, capacity+1),
		d:    d,
	}
	dummy := q.pool.Prealloc(m.Mem())
	m.Mem().Poke(q.head, sim.Word(dummy))
	m.Mem().Poke(q.tail, sim.Word(dummy))
	return q
}

// Enqueue appends val. One DCAS links the new node after the tail node and
// swings the tail pointer — there is never a half-linked state.
func (q *DCASQueue) Enqueue(s *sim.Strand, val sim.Word) {
	node := q.pool.Get(s)
	s.Store(node+qVal, val)
	s.Store(node+qNext, 0)
	for {
		tail := s.Load(q.tail)
		if q.d.Do(s,
			sim.Addr(tail)+qNext, 0, sim.Word(node),
			q.tail, tail, sim.Word(node)) {
			return
		}
	}
}

// Dequeue removes and returns the oldest value, or ok=false when empty.
// The DCAS advances head and poisons the departing dummy's next pointer in
// one step, so traversing or racing operations can never follow a retired
// node.
func (q *DCASQueue) Dequeue(s *sim.Strand) (sim.Word, bool) {
	for {
		head := s.Load(q.head)
		next := s.Load(sim.Addr(head) + qNext)
		if next == 0 {
			return 0, false
		}
		if next == deadNext {
			continue // head moved under us; reread
		}
		val := s.Load(sim.Addr(next) + qVal)
		if q.d.Do(s,
			q.head, head, next,
			sim.Addr(head)+qNext, next, deadNext) {
			return val, true
		}
	}
}

// LenDirect counts queued values with no cycle accounting (validation).
func (q *DCASQueue) LenDirect(mem *sim.Memory) int {
	n := 0
	for p := mem.Peek(sim.Addr(mem.Peek(q.head)) + qNext); p != 0 && p != deadNext; p = mem.Peek(sim.Addr(p) + qNext) {
		n++
	}
	return n
}

// MSQueue is the hand-crafted Michael–Scott lock-free queue.
type MSQueue struct {
	head sim.Addr
	tail sim.Addr
	pool *alloc.Pool
}

// NewMSQueue builds an empty queue with the given node capacity.
func NewMSQueue(m *sim.Machine, capacity int) *MSQueue {
	q := &MSQueue{
		head: m.Mem().AllocLines(sim.WordsPerLine),
		tail: m.Mem().AllocLines(sim.WordsPerLine),
		pool: alloc.NewPool(m, queueNodeWords, capacity+1),
	}
	dummy := q.pool.Prealloc(m.Mem())
	m.Mem().Poke(q.head, sim.Word(dummy))
	m.Mem().Poke(q.tail, sim.Word(dummy))
	return q
}

// Enqueue appends val with the classic two-step protocol: CAS the link,
// then swing the (possibly lagging) tail, helping a stalled peer if the
// tail is behind.
func (q *MSQueue) Enqueue(s *sim.Strand, val sim.Word) {
	node := q.pool.Get(s)
	s.Store(node+qVal, val)
	s.Store(node+qNext, 0)
	for {
		tail := s.Load(q.tail)
		next := s.Load(sim.Addr(tail) + qNext)
		if s.Load(q.tail) != tail {
			s.Branch(pcQueueWalk, true)
			continue
		}
		if next != 0 {
			// Tail is lagging: help swing it and retry.
			s.CAS(q.tail, tail, next)
			continue
		}
		if _, ok := s.CAS(sim.Addr(tail)+qNext, 0, sim.Word(node)); ok {
			s.CAS(q.tail, tail, sim.Word(node))
			return
		}
	}
}

// Dequeue removes and returns the oldest value, or ok=false when empty.
func (q *MSQueue) Dequeue(s *sim.Strand) (sim.Word, bool) {
	for {
		head := s.Load(q.head)
		tail := s.Load(q.tail)
		next := s.Load(sim.Addr(head) + qNext)
		if s.Load(q.head) != head {
			continue
		}
		if head == tail {
			if next == 0 {
				return 0, false
			}
			// Tail lagging behind a concurrent enqueue: help.
			s.CAS(q.tail, tail, next)
			continue
		}
		val := s.Load(sim.Addr(next) + qVal)
		if _, ok := s.CAS(q.head, head, next); ok {
			return val, true
		}
	}
}

// LenDirect counts queued values with no cycle accounting (validation).
func (q *MSQueue) LenDirect(mem *sim.Memory) int {
	n := 0
	for p := mem.Peek(sim.Addr(mem.Peek(q.head)) + qNext); p != 0; p = mem.Peek(sim.Addr(p) + qNext) {
		n++
	}
	return n
}
