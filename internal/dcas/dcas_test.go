package dcas

import (
	"testing"

	"rocktm/internal/sim"
)

func newMachine(strands int) *sim.Machine {
	cfg := sim.DefaultConfig(strands)
	cfg.MemWords = 1 << 21
	cfg.MaxCycles = 1 << 42
	return sim.New(cfg)
}

func TestDCASBasics(t *testing.T) {
	m := newMachine(1)
	d := New(m)
	a := m.Mem().AllocLines(sim.WordsPerLine)
	b := m.Mem().AllocLines(sim.WordsPerLine)
	m.Mem().Poke(a, 1)
	m.Mem().Poke(b, 2)
	m.Run(func(s *sim.Strand) {
		if !d.Do(s, a, 1, 10, b, 2, 20) {
			t.Error("matching DCAS failed")
		}
		if d.Do(s, a, 1, 99, b, 20, 99) {
			t.Error("mismatched DCAS succeeded")
		}
	})
	if m.Mem().Peek(a) != 10 || m.Mem().Peek(b) != 20 {
		t.Errorf("values = %d,%d want 10,20", m.Mem().Peek(a), m.Mem().Peek(b))
	}
}

func TestDCASAtomicSwapsConcurrent(t *testing.T) {
	// Strands repeatedly DCAS two counters (x, y) from (v, v) to (v+1, v+1);
	// the pair must always stay equal.
	const threads = 6
	m := newMachine(threads)
	d := New(m)
	x := m.Mem().AllocLines(sim.WordsPerLine)
	y := m.Mem().AllocLines(sim.WordsPerLine)
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 150; i++ {
			for {
				v := s.Load(x)
				if d.Do(s, x, v, v+1, y, v, v+1) {
					break
				}
			}
		}
	})
	vx, vy := m.Mem().Peek(x), m.Mem().Peek(y)
	if vx != vy || vx != threads*150 {
		t.Fatalf("x=%d y=%d want both %d", vx, vy, threads*150)
	}
}

// listSet is the common surface of both set implementations.
type listSet interface {
	Insert(s *sim.Strand, key uint64) bool
	Remove(s *sim.Strand, key uint64) bool
	Contains(s *sim.Strand, key uint64) bool
}

func testListAgainstModel(t *testing.T, build func(m *sim.Machine) listSet) {
	t.Helper()
	m := newMachine(1)
	set := build(m)
	model := map[uint64]bool{}
	m.Run(func(s *sim.Strand) {
		for i := 0; i < 1500; i++ {
			key := uint64(1 + s.RandIntn(100))
			switch s.RandIntn(3) {
			case 0:
				if set.Insert(s, key) == model[key] {
					t.Errorf("insert(%d) disagreed with model", key)
					return
				}
				model[key] = true
			case 1:
				if set.Remove(s, key) != model[key] {
					t.Errorf("remove(%d) disagreed with model", key)
					return
				}
				delete(model, key)
			case 2:
				if set.Contains(s, key) != model[key] {
					t.Errorf("contains(%d) disagreed with model", key)
					return
				}
			}
		}
	})
}

func TestDCASListModel(t *testing.T) {
	testListAgainstModel(t, func(m *sim.Machine) listSet {
		return NewDCASList(m, New(m), 1<<13)
	})
}

func TestHMListModel(t *testing.T) {
	testListAgainstModel(t, func(m *sim.Machine) listSet {
		return NewHMList(m, 1<<13)
	})
}

func testListConcurrent(t *testing.T, build func(m *sim.Machine) listSet, count func(mem *sim.Memory) int) {
	t.Helper()
	const threads = 6
	m := newMachine(threads)
	set := build(m)
	m.Run(func(s *sim.Strand) {
		base := uint64(100 + s.ID()*1000)
		for i := uint64(0); i < 80; i++ {
			if !set.Insert(s, base+i) {
				t.Errorf("fresh insert %d failed", base+i)
				return
			}
		}
		for i := uint64(0); i < 80; i += 2 {
			if !set.Remove(s, base+i) {
				t.Errorf("remove of present %d failed", base+i)
				return
			}
		}
		// Also fight over a tiny shared range.
		for i := 0; i < 60; i++ {
			k := uint64(1 + s.RandIntn(8))
			if s.RandIntn(2) == 0 {
				set.Insert(s, k)
			} else {
				set.Remove(s, k)
			}
		}
	})
	// Disjoint ranges: exactly 40 survivors per strand.
	for tid := 0; tid < threads; tid++ {
		base := uint64(100 + tid*1000)
		for i := uint64(0); i < 80; i++ {
			want := i%2 == 1
			var got bool
			m2 := m // single-strand read-back through strand 0 is fine post-run
			_ = m2
			got = containsDirect(m, set, base+i)
			if got != want {
				t.Fatalf("key %d present=%v want %v", base+i, got, want)
			}
		}
	}
}

// containsDirect checks membership after the run using direct memory walks.
func containsDirect(m *sim.Machine, set listSet, key uint64) bool {
	switch l := set.(type) {
	case *DCASList:
		mem := m.Mem()
		for p := mem.Peek(l.head + fNext); p != 0 && p != deadNext; p = mem.Peek(sim.Addr(p) + fNext) {
			if mem.Peek(sim.Addr(p)+fKey) == key {
				return true
			}
		}
		return false
	case *HMList:
		mem := m.Mem()
		for p := clearMark(mem.Peek(l.head + fNext)); p != 0; {
			next := mem.Peek(sim.Addr(p) + fNext)
			if !marked(next) && mem.Peek(sim.Addr(p)+fKey) == key {
				return true
			}
			p = clearMark(next)
		}
		return false
	}
	panic("unknown set type")
}

func TestDCASListConcurrent(t *testing.T) {
	testListConcurrent(t, func(m *sim.Machine) listSet {
		return NewDCASList(m, New(m), 1<<13)
	}, nil)
}

func TestHMListConcurrent(t *testing.T) {
	testListConcurrent(t, func(m *sim.Machine) listSet {
		return NewHMList(m, 1<<13)
	}, nil)
}
