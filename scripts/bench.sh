#!/bin/sh
# bench.sh — measure the simulator hot paths and the end-to-end figure
# pipeline, and write the results to BENCH_PR3.json.
#
# The "before" block in the JSON is pinned: it was measured at the pre-PR
# commit (5454d8c, the last commit before the hot-path overhaul) on the CI
# host and is embedded below so the file stays a self-contained
# before/after record. Re-running this script re-measures only the "after"
# block on the current tree.
#
# Usage: scripts/bench.sh [output.json]
#
# Protocol notes (single-core CI host, ±5% wall-clock drift between
# batches): the end-to-end number is the *minimum* of $ROUNDS cold serial
# runs, which is the standard way to suppress scheduler noise when
# comparing two binaries that cannot be interleaved (the "before" binary
# no longer exists once the tree has moved on).

set -eu

out=${1:-BENCH_PR3.json}
ROUNDS=${ROUNDS:-3}
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "building cmd/figures..." >&2
go build -o "$tmp/figures" ./cmd/figures

# ---- end-to-end: cold serial fig2a ----
echo "timing cold serial 'figures -exp fig2a' ($ROUNDS rounds)..." >&2
best=
runs=
i=0
while [ "$i" -lt "$ROUNDS" ]; do
    s=$(date +%s%N)
    "$tmp/figures" -exp fig2a -parallel 1 -no-cache >/dev/null
    e=$(date +%s%N)
    ms=$(((e - s) / 1000000))
    echo "  round $((i + 1)): ${ms}ms" >&2
    runs="$runs${runs:+, }$ms"
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    i=$((i + 1))
done

# ---- micro-benchmarks ----
echo "running internal/sim micro-benchmarks..." >&2
go test -run '^$' -bench . -benchtime 0.5s ./internal/sim/ >"$tmp/sim.txt"
echo "running internal/bench fig2a-cell benchmark..." >&2
go test -run '^$' -bench . -benchtime 3x ./internal/bench/ >"$tmp/cell.txt"

# bench_json FILE — turn `go test -bench` output lines into JSON members.
bench_json() {
    awk '/^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
        ns = $3
        line = sprintf("    \"%s\": %s", name, ns)
        if (out != "") out = out ",\n"
        out = out line
    } END { print out }' "$1"
}

cpu=$(awk -F: '/^model name/ { sub(/^ +/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)

{
    cat <<EOF
{
  "pr": 3,
  "title": "Simulator hot-path overhaul: O(1) TLB/scheduler/cache indexing with byte-identical figures",
  "protocol": "cold serial 'figures -exp fig2a -parallel 1 -no-cache', min of $ROUNDS runs; micro-benchmarks via 'go test -bench' (ns/op)",
  "host": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc 2>/dev/null || echo 1)
  },
  "headline": {
    "note": "pre/post binaries alternated in one loop on the 1-core CI host (the only protocol that cancels its +/-5% wall-clock drift); ms per cold serial 'figures -exp fig2a' run",
    "pre_ms": [3814, 3985, 3496, 3840, 3666],
    "post_ms": [2010, 2013, 1965, 2059, 1886],
    "speedup_median": 1.90,
    "speedup_min_over_min": 1.85
  },
  "before": {
    "commit": "5454d8c",
    "fig2a_cold_serial_ms": { "min": 3496, "runs_interleaved_with_post": [3814, 3985, 3496, 3840, 3666] },
    "micro_ns_per_op": {
      "BenchmarkTLBLookupHit/entries=64": 25.57,
      "BenchmarkTLBLookupHit/entries=128": 44.64,
      "BenchmarkTLBLookupHit/entries=256": 75.23,
      "BenchmarkTLBLookupHit/entries=512": 146.7,
      "BenchmarkTLBFillChurn/entries=64": 146.6,
      "BenchmarkTLBFillChurn/entries=128": 261.4,
      "BenchmarkTLBFillChurn/entries=256": 463.7,
      "BenchmarkTLBFillChurn/entries=512": 920.4,
      "BenchmarkSchedulerHandoff/strands=2": 110.9,
      "BenchmarkSchedulerHandoff/strands=4": 187.8,
      "BenchmarkSchedulerHandoff/strands=8": 210.4,
      "BenchmarkSchedulerHandoff/strands=16": 245.5,
      "BenchmarkLoadL1Hit": 14.10,
      "BenchmarkLoadTLBChurn": 1152,
      "BenchmarkStoreL1Hit": 14.16,
      "BenchmarkTxCommit": 194.9,
      "BenchmarkTxAbort": 31.95,
      "BenchmarkTxLoadForwarding": 14.02
    },
    "fig2a_cell": { "ns_per_op": 56422569, "bytes_per_op": 280465374, "allocs_per_op": 28799 }
  },
  "after": {
    "commit": "$(git rev-parse --short HEAD 2>/dev/null || echo worktree)",
    "fig2a_cold_serial_ms": { "min": $best, "runs": [$runs] },
    "micro_ns_per_op": {
EOF
    bench_json "$tmp/sim.txt" | sed 's/$//'
    cat <<EOF
    },
    "fig2a_cell": {
EOF
    awk '/^BenchmarkFig2aCell/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/cell.txt"
    cat <<EOF
    }
  }
}
EOF
} >"$out"

echo "wrote $out (fig2a cold serial: min ${best}ms)" >&2
