#!/bin/sh
# bench.sh — measure the hot-path trajectory of the PR 8 speed round and
# record it in BENCH_PR8.json: cold serial fig2a, the tiny tail and fleet
# experiments, and the in-process cell/latency benchmarks.
#
# PR 8 rebuilt the per-access hot path: core.Ctx devirtualized on the
# kernel walks (cmd/ctxgen), same-line coherence work batched in
# internal/sim, the Memory backing arrays pooled across machines, and
# cmd/figures/default.pgo re-trained. Golden digests are byte-identical;
# only wall-clock moves.
#
# The "before" and "headline" blocks in the JSON are pinned: they were
# measured at the pre-PR commit (59b27d5) with the pre/post binaries
# alternated in one loop — the only protocol that cancels the 1-core
# host's ±5-10% wall-clock drift. Re-running this script re-measures only
# the "after" block on the current tree.
#
# Commit stamping: "after.commit" is the actual HEAD at measurement time,
# with a "+dirty" suffix when the worktree has uncommitted changes.
# (BENCH_PR7.json recorded the same commit for before and after because
# the script ran on the not-yet-committed PR tree and stamped the old
# HEAD; the +dirty marker makes that state visible instead of silent.)
#
# tail/fleet are min-of-ROUNDS now (they were single-round in PR 7), so
# scripts/benchgate.sh can hold them to the same 10% budget as fig2a.
#
# Usage: scripts/bench.sh [output.json]

set -eu

out=${1:-BENCH_PR8.json}
ROUNDS=${ROUNDS:-3}
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "building cmd/figures..." >&2
go build -o "$tmp/figures" ./cmd/figures

# time_min CMD... : run the command ROUNDS times, echoing "min|run1, run2, ..."
time_min() {
    best=
    runs=
    i=0
    while [ "$i" -lt "$ROUNDS" ]; do
        s=$(date +%s%N)
        "$@" >/dev/null
        e=$(date +%s%N)
        ms=$(((e - s) / 1000000))
        echo "  round $((i + 1)): ${ms}ms" >&2
        runs="$runs${runs:+, }$ms"
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
        i=$((i + 1))
    done
    echo "$best|$runs"
}

echo "timing cold serial 'figures -exp fig2a' ($ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp fig2a -parallel 1 -no-cache)
best=${r%%|*}
runs=${r#*|}

echo "timing 'figures -exp tail' (tiny config, $ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp tail -ops 200 -threads 1,2 -parallel 1 -no-cache)
tail_best=${r%%|*}
tail_runs=${r#*|}

echo "timing 'figures -exp fleet' (tiny config, $ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp fleet -ops 40 -parallel 1 -no-cache)
fleet_best=${r%%|*}
fleet_runs=${r#*|}

# ---- in-process benchmarks ----
echo "running fig2a-cell benchmark..." >&2
go test -run '^$' -bench BenchmarkFig2aCell -benchtime 3x ./internal/bench/ >"$tmp/cell.txt"
echo "running latency-recorder benchmark..." >&2
go test -run '^$' -bench BenchmarkLatencyRecord -benchtime 0.5s ./internal/obs/ >"$tmp/lat.txt"

cpu=$(awk -F: '/^model name/ { sub(/^ +/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="$commit+dirty"
fi

{
    cat <<EOF
{
  "pr": 8,
  "title": "Second speed round: devirtualize the TM hot path, batch coherence, and gate the whole perf trajectory",
  "protocol": "cold serial 'figures -exp fig2a -parallel 1 -no-cache' plus tiny tail/fleet, each min of $ROUNDS runs; in-process benchmarks via 'go test -bench'; headline from pre/post binaries alternated in one loop at the pinned commits",
  "host": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc 2>/dev/null || echo 1)
  },
  "headline": {
    "note": "interleaved pre/post, same host, same loop: cold serial fig2a min 2251->2081 ms (1.08x; 1.13x against BENCH_PR7's recorded 2357 ms min), tiny tail min 115->75 ms (1.53x), tiny fleet min 264->178 ms (1.48x; PR 7 recorded 741 ms), fig2a cell 7616->1357 allocs/op (5.6x). fig2a misses the 1.4x target: its remaining profile is ~28% baton-scheduler coroutine handoffs, which are semantically pinned (quantum and interleaving define the golden cycle identity) — the devirtualization/batching/pooling wins land in full on the construction-heavy tiny configs and in the isolated micro-benches (same-line tx load run 8.2 ns/op vs 25.2 ns/op line-crossing).",
    "fig2a_pre_ms": [2320, 2251, 2253, 2416, 2264, 2446],
    "fig2a_post_ms": [2141, 2101, 2175, 2081, 2178, 2202],
    "fig2a_ratio_pre_over_post_min": 1.082,
    "tail_tiny_pre_ms": [142, 118, 115],
    "tail_tiny_post_ms": [76, 82, 75],
    "fleet_tiny_pre_ms": [365, 264, 290],
    "fleet_tiny_post_ms": [180, 178, 184]
  },
  "before": {
    "commit": "59b27d5",
    "fig2a_cold_serial_ms": { "min": 2251, "runs_interleaved_with_post": [2320, 2251, 2253, 2416, 2264, 2446] },
    "tail_tiny_cold_serial_ms": { "min": 115, "runs_interleaved_with_post": [142, 118, 115] },
    "fleet_tiny_cold_serial_ms": { "min": 264, "runs_interleaved_with_post": [365, 264, 290] },
    "fig2a_cell_allocs_per_op": 7616
  },
  "after": {
    "commit": "$commit",
    "fig2a_cold_serial_ms": { "min": $best, "runs": [$runs] },
    "tail_tiny_cold_serial_ms": { "min": $tail_best, "runs": [$tail_runs] },
    "fleet_tiny_cold_serial_ms": { "min": $fleet_best, "runs": [$fleet_runs] },
    "fig2a_cell": {
EOF
    awk '/^BenchmarkFig2aCell/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/cell.txt"
    cat <<EOF
    },
    "latency_record": {
EOF
    awk '/^BenchmarkLatencyRecord/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/lat.txt"
    cat <<EOF
    }
  }
}
EOF
} >"$out"

echo "wrote $out (fig2a: min ${best}ms; tail tiny: min ${tail_best}ms; fleet tiny: min ${fleet_best}ms)" >&2
