#!/bin/sh
# bench.sh — measure the hot-path trajectory of the PR 10 speed round and
# record it in BENCH_PR10.json: cold serial fig2a, the tiny tail and fleet
# experiments, and the in-process cell/latency benchmarks.
#
# PR 10 retired the coroutine handoff from the simulator hot path: the
# continuation driver (sim.Machine.RunStepped) is now the default strand
# scheduler for experiment cells, atomic-block bodies re-run against a
# core.OpLog journal at yield points (bail, not panic), the Memory
# backing pool scrubs to the allocator's true high-water mark, and
# cmd/figures/default.pgo was re-trained on the stepped hot path. Golden
# digests are byte-identical under both drivers; only wall-clock moves.
#
# The "before" and "headline" blocks in the JSON are pinned: they were
# measured at the pre-PR commit (1a5bb58) with the pre/post binaries
# alternated in one loop — the only protocol that cancels the 1-core
# host's ±5-10% wall-clock drift. Re-running this script re-measures only
# the "after" block on the current tree.
#
# Commit stamping: "after.commit" is the actual HEAD at measurement time,
# with a "+dirty" suffix when the worktree has uncommitted changes.
#
# Usage: scripts/bench.sh [output.json]

set -eu

out=${1:-BENCH_PR10.json}
ROUNDS=${ROUNDS:-3}
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "building cmd/figures..." >&2
go build -o "$tmp/figures" ./cmd/figures

# time_min CMD... : run the command ROUNDS times, echoing "min|run1, run2, ..."
time_min() {
    best=
    runs=
    i=0
    while [ "$i" -lt "$ROUNDS" ]; do
        s=$(date +%s%N)
        "$@" >/dev/null
        e=$(date +%s%N)
        ms=$(((e - s) / 1000000))
        echo "  round $((i + 1)): ${ms}ms" >&2
        runs="$runs${runs:+, }$ms"
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
        i=$((i + 1))
    done
    echo "$best|$runs"
}

echo "timing cold serial 'figures -exp fig2a' ($ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp fig2a -parallel 1 -no-cache)
best=${r%%|*}
runs=${r#*|}

echo "timing 'figures -exp tail' (tiny config, $ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp tail -ops 200 -threads 1,2 -parallel 1 -no-cache)
tail_best=${r%%|*}
tail_runs=${r#*|}

echo "timing 'figures -exp fleet' (tiny config, $ROUNDS rounds)..." >&2
r=$(time_min "$tmp/figures" -exp fleet -ops 40 -parallel 1 -no-cache)
fleet_best=${r%%|*}
fleet_runs=${r#*|}

# ---- in-process benchmarks ----
echo "running fig2a-cell benchmark..." >&2
go test -run '^$' -bench BenchmarkFig2aCell -benchtime 3x ./internal/bench/ >"$tmp/cell.txt"
echo "running latency-recorder benchmark..." >&2
go test -run '^$' -bench BenchmarkLatencyRecord -benchtime 0.5s ./internal/obs/ >"$tmp/lat.txt"

cpu=$(awk -F: '/^model name/ { sub(/^ +/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="$commit+dirty"
fi

{
    cat <<EOF
{
  "pr": 10,
  "title": "Continuation-machine scheduler: retire coroutine handoffs from the simulator hot path",
  "protocol": "cold serial 'figures -exp fig2a -parallel 1 -no-cache' plus tiny tail/fleet, each min of $ROUNDS runs; in-process benchmarks via 'go test -bench'; headline from pre/post binaries alternated in one loop at the pinned commits",
  "host": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc 2>/dev/null || echo 1)
  },
  "headline": {
    "note": "interleaved pre/post, same host, same loop: cold serial fig2a min 2049->1951 ms (1.05x), tiny tail min 69->65 ms (1.06x), tiny fleet min 163->131 ms (1.24x), warm in-process fig2a cell ~15.1->12.4 ms/op (1.22x), isolated scheduler handoff 91-156 ns -> 3.5-18 ns (9-26x, BenchmarkSchedulerHandoff vs BenchmarkSchedulerHandoffStepped). fig2a misses the issue's 1.25x target: post-PR8 profiles put the coroutine machinery at ~16% of cold samples (not the ~28% PR 8's residual note estimated), and the OpLog journal that replaces it costs ~14% flat plus body re-execution per resume — the journal tax cancels most of the handoff win on sim-bound runs. See docs/PERFORMANCE.md ('The continuation scheduler') for the residual breakdown.",
    "fig2a_pre_ms": [2223, 2177, 2200, 2091, 2049, 2092],
    "fig2a_post_ms": [2138, 2203, 2013, 1951, 2049, 1998],
    "fig2a_ratio_pre_over_post_min": 1.050,
    "tail_tiny_pre_ms": [78, 69, 86, 78, 72, 69],
    "tail_tiny_post_ms": [71, 65, 100, 67, 66, 72],
    "fleet_tiny_pre_ms": [268, 169, 204, 172, 163, 173],
    "fleet_tiny_post_ms": [136, 140, 132, 141, 131, 137]
  },
  "before": {
    "commit": "1a5bb58",
    "fig2a_cold_serial_ms": { "min": 2049, "runs_interleaved_with_post": [2223, 2177, 2200, 2091, 2049, 2092] },
    "tail_tiny_cold_serial_ms": { "min": 69, "runs_interleaved_with_post": [78, 69, 86, 78, 72, 69] },
    "fleet_tiny_cold_serial_ms": { "min": 163, "runs_interleaved_with_post": [268, 169, 204, 172, 163, 173] },
    "fig2a_cell_allocs_per_op": 1357
  },
  "after": {
    "commit": "$commit",
    "fig2a_cold_serial_ms": { "min": $best, "runs": [$runs] },
    "tail_tiny_cold_serial_ms": { "min": $tail_best, "runs": [$tail_runs] },
    "fleet_tiny_cold_serial_ms": { "min": $fleet_best, "runs": [$fleet_runs] },
    "fig2a_cell": {
EOF
    awk '/^BenchmarkFig2aCell/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/cell.txt"
    cat <<EOF
    },
    "latency_record": {
EOF
    awk '/^BenchmarkLatencyRecord/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/lat.txt"
    cat <<EOF
    }
  }
}
EOF
} >"$out"

echo "wrote $out (fig2a: min ${best}ms; tail tiny: min ${tail_best}ms; fleet tiny: min ${fleet_best}ms)" >&2
