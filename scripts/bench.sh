#!/bin/sh
# bench.sh — guard the performance-neutrality of the service-tier PR and
# record the end-to-end cost of the new fleet experiment, writing the
# results to BENCH_PR7.json.
#
# This PR is additive: the sharded service tier (internal/service), the
# arrival-shape envelopes (workload.Shape) and the fleet experiment ride
# alongside the existing figures, and the claim is neutrality on the
# legacy hot path. The only shared-path change is the inter-arrival draw
# (drawGap now divides by the shape envelope's rate factor, which is
# exactly 1.0 for the constant shape), and fig2a is closed-loop, so it
# never draws a gap at all.
#
# The "before" block in the JSON is pinned: it was measured at the pre-PR
# commit (1b8d325, the last commit before the service tier) on the CI
# host, with the pre/post binaries alternated in one loop — the only
# protocol that cancels the 1-core host's ±5% wall-clock drift.
# Re-running this script re-measures only the "after" block on the
# current tree.
#
# Usage: scripts/bench.sh [output.json]

set -eu

out=${1:-BENCH_PR7.json}
ROUNDS=${ROUNDS:-3}
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "building cmd/figures..." >&2
go build -o "$tmp/figures" ./cmd/figures

# ---- end-to-end: cold serial fig2a (the legacy hot path) ----
echo "timing cold serial 'figures -exp fig2a' ($ROUNDS rounds)..." >&2
best=
runs=
i=0
while [ "$i" -lt "$ROUNDS" ]; do
    s=$(date +%s%N)
    "$tmp/figures" -exp fig2a -parallel 1 -no-cache >/dev/null
    e=$(date +%s%N)
    ms=$(((e - s) / 1000000))
    echo "  round $((i + 1)): ${ms}ms" >&2
    runs="$runs${runs:+, }$ms"
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    i=$((i + 1))
done

# ---- end-to-end: the tail experiment, tiny config (after-only) ----
echo "timing 'figures -exp tail' (tiny config, 1 round)..." >&2
s=$(date +%s%N)
"$tmp/figures" -exp tail -ops 200 -threads 1,2 -parallel 1 -no-cache >/dev/null
e=$(date +%s%N)
tail_ms=$(((e - s) / 1000000))

# ---- end-to-end: the new fleet experiment, tiny config (after-only) ----
echo "timing 'figures -exp fleet' (tiny config, 1 round)..." >&2
s=$(date +%s%N)
"$tmp/figures" -exp fleet -ops 40 -parallel 1 -no-cache >/dev/null
e=$(date +%s%N)
fleet_ms=$(((e - s) / 1000000))

# ---- in-process benchmarks ----
echo "running fig2a-cell benchmark..." >&2
go test -run '^$' -bench BenchmarkFig2aCell -benchtime 3x ./internal/bench/ >"$tmp/cell.txt"
echo "running latency-recorder benchmark..." >&2
go test -run '^$' -bench BenchmarkLatencyRecord -benchtime 0.5s ./internal/obs/ >"$tmp/lat.txt"

cpu=$(awk -F: '/^model name/ { sub(/^ +/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)

{
    cat <<EOF
{
  "pr": 7,
  "title": "Sharded transactional service tier: request router, per-shard batching, 2PC cross-shard transactions over the TM stack",
  "protocol": "cold serial 'figures -exp fig2a -parallel 1 -no-cache', min of $ROUNDS runs; in-process benchmarks via 'go test -bench'; neutrality headline from pre/post binaries alternated in one loop",
  "host": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc 2>/dev/null || echo 1)
  },
  "headline": {
    "note": "additive-subsystem neutrality: the service tier and arrival shapes leave the legacy hot path untouched (constant-shape drawGap divides by exactly 1.0; fig2a is closed-loop and never draws a gap); interleaved pre/post cold serial fig2a has the post minimum 6% *below* the pre minimum, i.e. inside the 1-core host's documented ±5-10% wall-clock drift, and golden digests are byte-identical",
    "pre_ms": [2722, 2426, 2357],
    "post_ms": [2410, 2219, 2275],
    "ratio_min_post_over_pre": 0.941
  },
  "before": {
    "commit": "1b8d325",
    "fig2a_cold_serial_ms": { "min": 2357, "runs_interleaved_with_post": [2722, 2426, 2357] },
    "tail_tiny_cold_serial_ms": 105
  },
  "after": {
    "commit": "$(git rev-parse --short HEAD 2>/dev/null || echo worktree)",
    "fig2a_cold_serial_ms": { "min": $best, "runs": [$runs] },
    "tail_tiny_cold_serial_ms": $tail_ms,
    "fleet_tiny_cold_serial_ms": $fleet_ms,
    "fig2a_cell": {
EOF
    awk '/^BenchmarkFig2aCell/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/cell.txt"
    cat <<EOF
    },
    "latency_record": {
EOF
    awk '/^BenchmarkLatencyRecord/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/lat.txt"
    cat <<EOF
    }
  }
}
EOF
} >"$out"

echo "wrote $out (fig2a cold serial: min ${best}ms; tail tiny: ${tail_ms}ms; fleet tiny: ${fleet_ms}ms)" >&2
