#!/bin/sh
# bench.sh — guard the performance-neutrality of the workload-layer
# refactor and record the latency-recorder cost, writing the results to
# BENCH_PR5.json.
#
# Unlike PR 3's record (see BENCH_PR3.json, kept in-tree), this PR is not
# a speedup: every figure driver moved onto internal/workload's shared
# Driver and the claim is *neutrality* — byte-identical output (pinned by
# the golden digests) at unchanged cost, plus an allocation-free latency
# recorder cheap enough to leave attached to every driver loop.
#
# The "before" block in the JSON is pinned: it was measured at the pre-PR
# commit (234c740, the last commit before the workload layer) on the CI
# host, with the pre/post binaries alternated in one loop — the only
# protocol that cancels the 1-core host's ±5% wall-clock drift.
# Re-running this script re-measures only the "after" block on the
# current tree.
#
# Usage: scripts/bench.sh [output.json]

set -eu

out=${1:-BENCH_PR5.json}
ROUNDS=${ROUNDS:-3}
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "building cmd/figures..." >&2
go build -o "$tmp/figures" ./cmd/figures

# ---- end-to-end: cold serial fig2a (the refactored legacy figure) ----
echo "timing cold serial 'figures -exp fig2a' ($ROUNDS rounds)..." >&2
best=
runs=
i=0
while [ "$i" -lt "$ROUNDS" ]; do
    s=$(date +%s%N)
    "$tmp/figures" -exp fig2a -parallel 1 -no-cache >/dev/null
    e=$(date +%s%N)
    ms=$(((e - s) / 1000000))
    echo "  round $((i + 1)): ${ms}ms" >&2
    runs="$runs${runs:+, }$ms"
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    i=$((i + 1))
done

# ---- end-to-end: the new tail experiment, tiny config (after-only) ----
echo "timing 'figures -exp tail' (tiny config, 1 round)..." >&2
s=$(date +%s%N)
"$tmp/figures" -exp tail -ops 200 -threads 1,2 -parallel 1 -no-cache >/dev/null
e=$(date +%s%N)
tail_ms=$(((e - s) / 1000000))

# ---- in-process benchmarks ----
echo "running fig2a-cell benchmark..." >&2
go test -run '^$' -bench BenchmarkFig2aCell -benchtime 3x ./internal/bench/ >"$tmp/cell.txt"
echo "running latency-recorder benchmark..." >&2
go test -run '^$' -bench BenchmarkLatencyRecord -benchtime 0.5s ./internal/obs/ >"$tmp/lat.txt"

cpu=$(awk -F: '/^model name/ { sub(/^ +/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)

{
    cat <<EOF
{
  "pr": 5,
  "title": "Unified workload layer: declarative op-mix/skew/arrival specs + per-op latency percentiles across every figure driver",
  "protocol": "cold serial 'figures -exp fig2a -parallel 1 -no-cache', min of $ROUNDS runs; in-process benchmarks via 'go test -bench'; neutrality headline from pre/post binaries alternated in one loop",
  "host": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc 2>/dev/null || echo 1)
  },
  "headline": {
    "note": "refactor neutrality: every legacy driver now runs through internal/workload with byte-identical output (golden digests unchanged); interleaved pre/post cold serial fig2a shows no regression, and the latency recorder costs ~2.7ns and 0 allocs per op",
    "pre_ms": [2188, 2595, 2264, 2310, 1902],
    "post_ms": [2395, 2435, 2114, 1974, 1970],
    "ratio_median_pre_over_post": 1.07,
    "latency_record_ns_per_op": 2.666
  },
  "before": {
    "commit": "234c740",
    "fig2a_cold_serial_ms": { "min": 1902, "runs_interleaved_with_post": [2188, 2595, 2264, 2310, 1902] },
    "fig2a_cell": { "ns_per_op": 23209551, "bytes_per_op": 40404837, "allocs_per_op": 7597 }
  },
  "after": {
    "commit": "$(git rev-parse --short HEAD 2>/dev/null || echo worktree)",
    "fig2a_cold_serial_ms": { "min": $best, "runs": [$runs] },
    "tail_tiny_cold_serial_ms": $tail_ms,
    "fig2a_cell": {
EOF
    awk '/^BenchmarkFig2aCell/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/cell.txt"
    cat <<EOF
    },
    "latency_record": {
EOF
    awk '/^BenchmarkLatencyRecord/ {
        printf "      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s\n", $3, $5, $7
    }' "$tmp/lat.txt"
    cat <<EOF
    }
  }
}
EOF
} >"$out"

echo "wrote $out (fig2a cold serial: min ${best}ms; tail tiny: ${tail_ms}ms)" >&2
