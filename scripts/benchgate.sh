#!/bin/sh
# benchgate.sh — performance regression gate over the committed bench
# record: re-measure the cold serial fig2a end-to-end time with
# scripts/bench.sh and fail when it regresses more than THRESHOLD_PCT
# (default 10%) against the checked-in baseline's after-block minimum.
#
# The baseline is the newest committed BENCH_PR*.json's
# after.fig2a_cold_serial_ms.min — the same min-of-N protocol this script
# re-runs, which is what makes the comparison meaningful on a drifting CI
# host: the minimum of several rounds cancels most scheduler noise, and
# the 10% margin absorbs the rest. The gate guards the end-to-end hot
# path (simulator + workload driver + figure rendering), so an accidental
# O(n) regression or a perturbing observability hook shows up here even
# if every golden test still passes.
#
# Usage: scripts/benchgate.sh [baseline.json]
#   THRESHOLD_PCT=15 scripts/benchgate.sh     # custom margin
#   ROUNDS=5 scripts/benchgate.sh             # more rounds (see bench.sh)

set -eu

cd "$(dirname "$0")/.."
baseline=${1:-$(ls BENCH_PR*.json | sort -V | tail -1)}
threshold=${THRESHOLD_PCT:-10}

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    exit 2
fi

json_min() {
    python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["after"]["fig2a_cold_serial_ms"]["min"])' "$1"
}

base_ms=$(json_min "$baseline")

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT
echo "benchgate: re-measuring against $baseline (baseline ${base_ms}ms, margin ${threshold}%)..." >&2
scripts/bench.sh "$fresh" >&2
new_ms=$(json_min "$fresh")

limit=$((base_ms * (100 + threshold) / 100))
echo "benchgate: cold serial fig2a ${new_ms}ms vs baseline ${base_ms}ms (limit ${limit}ms)" >&2
if [ "$new_ms" -gt "$limit" ]; then
    echo "benchgate: FAIL — regression beyond ${threshold}% budget" >&2
    exit 1
fi
echo "benchgate: OK" >&2
