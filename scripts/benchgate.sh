#!/bin/sh
# benchgate.sh — performance regression gate over the committed bench
# record: re-measure the cold serial fig2a end-to-end time (and, when the
# baseline records one, the tiny-config tail experiment) with
# scripts/bench.sh and fail on regressions beyond the margin.
#
# The baseline is the newest committed BENCH_PR*.json. fig2a compares
# after.fig2a_cold_serial_ms.min — the same min-of-N protocol this script
# re-runs, which is what makes the comparison meaningful on a drifting CI
# host: the minimum of several rounds cancels most scheduler noise, and
# the 10% margin absorbs the rest. The tail experiment is a single-round
# timing, so it gates with a wider margin (default 50%) and is skipped
# gracefully against baselines that predate it. The gate guards the
# end-to-end hot paths (simulator + workload driver + figure rendering,
# and the latency-capture sweep), so an accidental O(n) regression or a
# perturbing observability hook shows up here even if every golden test
# still passes.
#
# Usage: scripts/benchgate.sh [baseline.json]
#   THRESHOLD_PCT=15 scripts/benchgate.sh        # custom fig2a margin
#   TAIL_THRESHOLD_PCT=75 scripts/benchgate.sh   # custom tail margin
#   ROUNDS=5 scripts/benchgate.sh                # more rounds (see bench.sh)

set -eu

cd "$(dirname "$0")/.."
baseline=${1:-$(ls BENCH_PR*.json | sort -V | tail -1)}
threshold=${THRESHOLD_PCT:-10}
tail_threshold=${TAIL_THRESHOLD_PCT:-50}

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    exit 2
fi

# json_after FILE KEY prints after.KEY (or KEY.min when KEY is an object
# with a "min"), or the empty string when the key is absent.
json_after() {
    python3 -c '
import json, sys
v = json.load(open(sys.argv[1])).get("after", {}).get(sys.argv[2], "")
if isinstance(v, dict):
    v = v.get("min", "")
print(v)' "$1" "$2"
}

base_ms=$(json_after "$baseline" fig2a_cold_serial_ms)
if [ -z "$base_ms" ]; then
    echo "benchgate: baseline $baseline has no after.fig2a_cold_serial_ms" >&2
    exit 2
fi
base_tail_ms=$(json_after "$baseline" tail_tiny_cold_serial_ms)

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT
echo "benchgate: re-measuring against $baseline (baseline ${base_ms}ms, margin ${threshold}%)..." >&2
scripts/bench.sh "$fresh" >&2
new_ms=$(json_after "$fresh" fig2a_cold_serial_ms)

fail=0

limit=$((base_ms * (100 + threshold) / 100))
echo "benchgate: cold serial fig2a ${new_ms}ms vs baseline ${base_ms}ms (limit ${limit}ms)" >&2
if [ "$new_ms" -gt "$limit" ]; then
    echo "benchgate: FAIL — fig2a regression beyond ${threshold}% budget" >&2
    fail=1
fi

if [ -n "$base_tail_ms" ]; then
    new_tail_ms=$(json_after "$fresh" tail_tiny_cold_serial_ms)
    tail_limit=$((base_tail_ms * (100 + tail_threshold) / 100))
    echo "benchgate: tail tiny ${new_tail_ms}ms vs baseline ${base_tail_ms}ms (limit ${tail_limit}ms)" >&2
    if [ "$new_tail_ms" -gt "$tail_limit" ]; then
        echo "benchgate: FAIL — tail regression beyond ${tail_threshold}% budget" >&2
        fail=1
    fi
else
    echo "benchgate: baseline has no tail_tiny_cold_serial_ms; skipping tail gate" >&2
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "benchgate: OK" >&2
