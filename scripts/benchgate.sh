#!/bin/sh
# benchgate.sh — performance regression gate over the committed bench
# record: re-measure the full hot-path trajectory (cold serial fig2a, the
# tiny tail experiment, the tiny fleet experiment) with scripts/bench.sh
# and fail on any metric regressing beyond the margin.
#
# The baseline is the newest committed BENCH_PR*.json. Every metric
# compares min-of-N against min-of-N — the same protocol this script
# re-runs — which is what makes the comparison meaningful on a drifting
# CI host: the minimum of several rounds cancels most scheduler noise,
# and the margin absorbs the rest. Baselines from PR 7 and earlier record
# tail as a single-round scalar and no fleet number; against those, tail
# gates with the wider single-round margin and fleet is skipped.
#
# The gate guards the end-to-end hot paths (simulator + workload driver +
# figure rendering, the latency-capture sweep, and the sharded service
# tier), so an accidental O(n) regression or a perturbing observability
# hook shows up here even if every golden test still passes.
#
# Self-test: --selftest measures once, then checks the gate arithmetic
# both ways — the fresh measurement must pass against the baseline, and
# the same measurement inflated by SELFTEST_PCT (default 15%) must fail.
# A gate that cannot fail is no gate; CI runs this mode.
#
# Usage: scripts/benchgate.sh [--selftest] [baseline.json]
#   THRESHOLD_PCT=15 scripts/benchgate.sh        # custom margin (all metrics)
#   TAIL_THRESHOLD_PCT=75 scripts/benchgate.sh   # legacy single-round tail margin
#   ROUNDS=5 scripts/benchgate.sh                # more rounds (see bench.sh)
#   SELFTEST_PCT=15 scripts/benchgate.sh --selftest

set -eu

selftest=0
if [ "${1:-}" = "--selftest" ]; then
    selftest=1
    shift
fi

cd "$(dirname "$0")/.."
baseline=${1:-$(ls BENCH_PR*.json | sort -V | tail -1)}
threshold=${THRESHOLD_PCT:-10}
tail_single_threshold=${TAIL_THRESHOLD_PCT:-50}
selftest_pct=${SELFTEST_PCT:-15}

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    exit 2
fi

# json_after FILE KEY prints after.KEY (or KEY.min when KEY is an object
# with a "min"), or the empty string when the key is absent. A second
# line reports "min" or "scalar" so callers can pick the right margin.
json_after() {
    python3 -c '
import json, sys
v = json.load(open(sys.argv[1])).get("after", {}).get(sys.argv[2], "")
if isinstance(v, dict):
    print(v.get("min", ""))
    print("min")
else:
    print(v)
    print("scalar")' "$1" "$2"
}

base_fig2a=$(json_after "$baseline" fig2a_cold_serial_ms | head -1)
if [ -z "$base_fig2a" ]; then
    echo "benchgate: baseline $baseline has no after.fig2a_cold_serial_ms" >&2
    exit 2
fi
base_tail=$(json_after "$baseline" tail_tiny_cold_serial_ms | head -1)
tail_kind=$(json_after "$baseline" tail_tiny_cold_serial_ms | tail -1)
base_fleet=$(json_after "$baseline" fleet_tiny_cold_serial_ms | head -1)

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT
echo "benchgate: re-measuring against $baseline (margin ${threshold}%)..." >&2
scripts/bench.sh "$fresh" >&2
new_fig2a=$(json_after "$fresh" fig2a_cold_serial_ms | head -1)
new_tail=$(json_after "$fresh" tail_tiny_cold_serial_ms | head -1)
new_fleet=$(json_after "$fresh" fleet_tiny_cold_serial_ms | head -1)

# gate INFLATE_PCT: evaluate every metric with the fresh numbers inflated
# by INFLATE_PCT percent; returns non-zero if any metric exceeds its
# budget. Inflation 0 is the real gate.
gate() {
    inflate=$1
    gfail=0

    check() {
        name=$1
        base=$2
        new=$3
        margin=$4
        new=$((new * (100 + inflate) / 100))
        limit=$((base * (100 + margin) / 100))
        echo "benchgate: $name ${new}ms vs baseline ${base}ms (limit ${limit}ms)" >&2
        if [ "$new" -gt "$limit" ]; then
            echo "benchgate: FAIL — $name regression beyond ${margin}% budget" >&2
            gfail=1
        fi
    }

    check "cold serial fig2a" "$base_fig2a" "$new_fig2a" "$threshold"

    if [ -n "$base_tail" ]; then
        if [ "$tail_kind" = "min" ]; then
            check "tail tiny" "$base_tail" "$new_tail" "$threshold"
        else
            # Single-round legacy baseline: wider margin.
            check "tail tiny (single-round baseline)" "$base_tail" "$new_tail" "$tail_single_threshold"
        fi
    else
        echo "benchgate: baseline has no tail_tiny_cold_serial_ms; skipping tail gate" >&2
    fi

    if [ -n "$base_fleet" ]; then
        check "fleet tiny" "$base_fleet" "$new_fleet" "$threshold"
    else
        echo "benchgate: baseline has no fleet_tiny_cold_serial_ms; skipping fleet gate" >&2
    fi

    return $gfail
}

if [ "$selftest" -eq 1 ]; then
    echo "benchgate: selftest — fresh measurement must pass..." >&2
    if ! gate 0; then
        echo "benchgate: SELFTEST FAIL — fresh measurement does not pass the gate" >&2
        exit 1
    fi
    echo "benchgate: selftest — synthetic ${selftest_pct}% slowdown must fail..." >&2
    if gate "$selftest_pct"; then
        echo "benchgate: SELFTEST FAIL — gate accepted a ${selftest_pct}% slowdown" >&2
        exit 1
    fi
    echo "benchgate: selftest OK (passes clean, rejects +${selftest_pct}%)" >&2
    exit 0
fi

if ! gate 0; then
    exit 1
fi
echo "benchgate: OK" >&2
