#!/bin/sh
# checklinks.sh — fail if any markdown file contains a relative link to a
# file that does not exist.
#
# Scope: every *.md tracked in the repository. Checked links are the
# [text](target) inline form whose target is relative (no scheme, no
# leading #). Anchors are stripped before the existence check; URL
# targets (http:, https:, mailto:) and pure in-page anchors are ignored.
#
# Usage: scripts/checklinks.sh   (from the repository root; CI runs it in
# the docs-check job, see .github/workflows/ci.yml)
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

fail=0
# Tracked markdown only, so stray editor backups don't break CI.
for md in $(git ls-files '*.md'); do
	dir=$(dirname "$md")
	# Pull every inline-link target out of the file, one per line.
	# (grep -o keeps it POSIX; the sed strips the [text]( prefix and ).)
	targets=$(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
		sed 's/^\[[^]]*\](//; s/)$//') || true
	[ -n "$targets" ] || continue
	printf '%s\n' "$targets" | while IFS= read -r t; do
		case "$t" in
		'' | \#* | http://* | https://* | mailto:*) continue ;;
		esac
		# Strip an in-page anchor and any "title" suffix.
		path=${t%%#*}
		path=${path%% *}
		[ -n "$path" ] || continue
		if ! [ -e "$dir/$path" ]; then
			echo "BROKEN $md -> $t"
			# The pipeline runs in a subshell; signal through a file.
			: >"$root/.checklinks.failed"
		fi
	done
done

if [ -e "$root/.checklinks.failed" ]; then
	rm -f "$root/.checklinks.failed"
	echo "checklinks: broken relative links found" >&2
	exit 1
fi
echo "checklinks: all relative markdown links resolve"
