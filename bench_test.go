package rocktm

import (
	"testing"

	"rocktm/internal/bench"
	"rocktm/internal/counter"
	"rocktm/internal/sim"
)

// The benchmarks mirror the paper's tables and figures at reduced scale:
// each runs one representative cell of the corresponding experiment and
// reports the simulated throughput (ops per simulated microsecond) as the
// figure's metric, alongside Go's own wall-clock ns/op for the simulator
// itself. Full sweeps are produced by cmd/figures.

// benchOptions returns a small, fast configuration.
func benchOptions(b *testing.B) bench.Options {
	return bench.Options{Threads: []int{4}, OpsPerThread: 50 + b.N%7, Seed: 1}
}

// reportFigure runs fig and reports the named curve's 4-thread throughput.
func reportFigure(b *testing.B, run func(bench.Options) (*bench.Figure, error), curve string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := run(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		v, ok := fig.ValueAt(curve, 4)
		if !ok {
			b.Fatalf("curve %q not found in %q", curve, fig.Title)
		}
		last = v
	}
	b.ReportMetric(last, "simOps/µs")
}

// BenchmarkCounterHTMBackoff is the Section 4 counter experiment (HTM with
// backoff at 4 threads).
func BenchmarkCounterHTMBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(4)
		cfg.MemWords = 1 << 18
		cfg.Quantum = 8
		cfg.MaxCycles = 1 << 44
		m := sim.New(cfg)
		ctr := counter.New(m)
		m.Run(func(s *sim.Strand) {
			for k := 0; k < 200; k++ {
				ctr.Inc(s, counter.HTMBackoff)
			}
		})
		if ctr.Value(m.Mem()) != 800 {
			b.Fatal("lost updates")
		}
	}
}

// BenchmarkFig1aPhTM / ...OneLock: hash table, key range 256 (Figure 1a).
func BenchmarkFig1aPhTM(b *testing.B)    { reportFigure(b, bench.Fig1a, "phtm") }
func BenchmarkFig1aHyTM(b *testing.B)    { reportFigure(b, bench.Fig1a, "hytm") }
func BenchmarkFig1aSTM(b *testing.B)     { reportFigure(b, bench.Fig1a, "stm") }
func BenchmarkFig1aSTMTL2(b *testing.B)  { reportFigure(b, bench.Fig1a, "stm-tl2") }
func BenchmarkFig1aOneLock(b *testing.B) { reportFigure(b, bench.Fig1a, "one-lock") }

// BenchmarkFig1bPhTM: hash table, key range 128,000 (Figure 1b).
func BenchmarkFig1bPhTM(b *testing.B) { reportFigure(b, bench.Fig1b, "phtm") }

// BenchmarkFig2aPhTM / Fig2b: red-black tree (Figure 2).
func BenchmarkFig2aPhTM(b *testing.B)   { reportFigure(b, bench.Fig2a, "phtm") }
func BenchmarkFig2bPhTM(b *testing.B)   { reportFigure(b, bench.Fig2b, "phtm") }
func BenchmarkFig2bSTMTL2(b *testing.B) { reportFigure(b, bench.Fig2b, "stm-tl2") }

// BenchmarkFig3aTLE / NoTM: STL vector under TLE vs one lock (Figure 3a).
func BenchmarkFig3aTLE(b *testing.B)  { reportFigure(b, bench.Fig3a, "htm.oneLock") }
func BenchmarkFig3aNoTM(b *testing.B) { reportFigure(b, bench.Fig3a, "noTM.oneLock") }

// BenchmarkFig3bTLE262: Java Hashtable, mix 2:6:2, TLE (Figure 3b).
func BenchmarkFig3bTLE262(b *testing.B) { reportFigure(b, bench.Fig3b, "2:6:2-TLE") }

// BenchmarkDCASList / HMList: the Section 4 set comparison.
func BenchmarkDCASList(b *testing.B) { reportFigure(b, bench.DCASFigure, "dcas-list") }
func BenchmarkHMList(b *testing.B)   { reportFigure(b, bench.DCASFigure, "juc-lockfree") }

// BenchmarkVolanoTLE: the VolanoMark-like chat workload with TLE enabled.
func BenchmarkVolanoTLE(b *testing.B) { reportFigure(b, bench.VolanoFigure, "TLE-enabled") }

// BenchmarkMSFOptLE / OptSky / OptLock: Figure 4 variants at 4 threads on a
// small roadmap; the metric is simulated milliseconds of running time.
func benchMSF(b *testing.B, variantName string) {
	b.Helper()
	o := bench.MSFOptions{Width: 32, Height: 32, Threads: []int{4}, Seed: 1}
	var last float64
	for i := 0; i < b.N; i++ {
		secs, err := bench.RunMSFVariant(o, variantName, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = secs * 1e3
	}
	b.ReportMetric(last, "simMs")
}

func BenchmarkMSFFig4(b *testing.B) { benchMSF(b, "msf-opt-le") }

// BenchmarkProfileSection61 runs the failure-analysis pipeline.
func BenchmarkProfileSection61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines := bench.ProfileReport(200, []int{1024})
		if len(lines) == 0 {
			b.Fatal("empty profile report")
		}
	}
}
