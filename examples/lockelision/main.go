// Lockelision shows Section 7's headline result on a small scale: the same
// coarse-lock-protected red-black tree run with the lock taken normally
// and with the lock *elided* by best-effort hardware transactions.
// Non-conflicting critical sections then run in parallel, and the CPS-
// guided policy falls back to the real lock only when it must.
package main

import (
	"fmt"

	"rocktm"
)

func run(elide bool) (opsPerUsec float64, stats *rocktm.Stats) {
	const (
		threads  = 8
		keyRange = 512
		ops      = 3000
	)
	m := rocktm.NewMachine(rocktm.DefaultConfig(threads))
	tree := rocktm.NewRBTree(m, keyRange+2*threads+64)
	var keys []uint64
	for k := uint64(0); k < keyRange; k += 2 {
		keys = append(keys, k)
	}
	tree.Prepopulate(m.Mem(), keys, 1)

	var sys rocktm.System
	if elide {
		sys = rocktm.NewTLE(m)
	} else {
		sys = rocktm.NewOneLock(m)
	}
	m.Run(func(s *rocktm.Strand) {
		for i := 0; i < ops; i++ {
			key := uint64(s.RandIntn(keyRange))
			switch r := s.RandIntn(100); {
			case r < 90:
				tree.LookupOp(sys, s, key)
			case r < 95:
				tree.InsertOp(sys, s, key, 1)
			default:
				tree.DeleteOp(sys, s, key)
			}
		}
	})
	st := sys.Stats()
	return float64(st.Ops) / (m.ElapsedSeconds() * 1e6), st
}

func main() {
	lock, _ := run(false)
	tle, st := run(true)
	fmt.Printf("one-lock:     %8.2f ops/µs\n", lock)
	fmt.Printf("lock elision: %8.2f ops/µs  (%.1fx)\n", tle, tle/lock)
	fmt.Printf("elision detail: %d blocks, %d hardware commits, %d lock fallbacks (%.2f%%)\n",
		st.Ops, st.HWCommits, st.LockAcquires,
		100*float64(st.LockAcquires)/float64(st.Ops))
	if st.CPSHist.Total() > 0 {
		fmt.Printf("failed attempts by CPS value: %s\n", st.CPSHist)
	}
}
