// Msfroadmap runs the paper's Section 8 application end to end: the
// Kang–Bader parallel Minimum Spanning Forest algorithm on a synthetic
// road network, with its atomic blocks executed by eliding a single global
// lock with best-effort hardware transactions (the msf-opt-le
// configuration that wins Figure 4), validated against sequential Kruskal.
package main

import (
	"fmt"

	"rocktm"
)

func main() {
	const (
		threads = 8
		dim     = 72
	)
	m := rocktm.NewMachine(rocktm.DefaultConfig(threads))
	g := rocktm.NewRoadmap(m, dim, dim, 0.05, 1)
	fmt.Printf("roadmap: %d vertices, %d undirected edges\n", g.N, g.M)

	sys := rocktm.NewTLE(m)
	runner := rocktm.NewMSFRunner(m, g, sys, rocktm.MSFOpt)
	res := runner.Run(m)
	if err := runner.Validate(res); err != nil {
		panic(err)
	}

	st := sys.Stats()
	fmt.Printf("forest: weight=%d, %d edges, %d trees started\n",
		res.TotalWeight, res.Edges, res.Trees)
	fmt.Printf("running time: %.3f simulated ms on %d threads\n",
		m.ElapsedSeconds()*1e3, threads)
	fmt.Printf("atomic blocks: %d, hardware commits: %d, lock fallbacks: %d (%.3f%%)\n",
		st.Ops, st.HWCommits, st.LockAcquires,
		100*float64(st.LockAcquires)/float64(st.Ops))
	fmt.Println("validated against sequential Kruskal: OK")
}
