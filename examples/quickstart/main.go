// Quickstart: build a simulated 8-strand Rock machine, share a hash table
// between the strands, and run a mixed workload under Phased TM — watching
// how many operations commit as uninstrumented hardware transactions
// versus falling to the software phase.
package main

import (
	"fmt"

	"rocktm"
)

func main() {
	const (
		threads  = 8
		keyRange = 1024
		ops      = 5000
	)
	m := rocktm.NewMachine(rocktm.DefaultConfig(threads))
	table := rocktm.NewHashTable(m, 1<<14, keyRange+2*threads+64)
	sys := rocktm.NewPhTM(m, rocktm.NewSkySTM(m))

	m.Run(func(s *rocktm.Strand) {
		for i := 0; i < ops; i++ {
			key := uint64(s.RandIntn(keyRange))
			switch s.RandIntn(3) {
			case 0:
				table.InsertOp(sys, s, key, rocktm.Word(i))
			case 1:
				table.DeleteOp(sys, s, key)
			default:
				table.LookupOp(sys, s, key)
			}
		}
	})

	st := sys.Stats()
	secs := m.ElapsedSeconds()
	fmt.Printf("ran %d operations on %d strands in %.3f simulated ms\n",
		st.Ops, threads, secs*1e3)
	fmt.Printf("throughput: %.2f ops/µs (simulated)\n",
		float64(st.Ops)/(secs*1e6))
	fmt.Printf("hardware commits: %d/%d blocks (%.2f%% retries); software commits: %d\n",
		st.HWCommits, st.Ops, 100*st.RetryFraction(), st.SWCommits)
	if st.CPSHist.Total() > 0 {
		fmt.Printf("failure reasons (CPS): %s\n", st.CPSHist)
	}
	fmt.Printf("table holds %d keys at the end\n", table.Count(m.Mem()))
}
