// Besteffort demonstrates programming Rock's HTM directly, the way
// Section 3 and 4 of the paper do: raw chkpt/commit attempts, reading the
// CPS register to decide how to react — retry on UCTI (the reported reason
// may be misspeculation), warm the TLB with a dummy CAS on a persistent
// ST, back off on COH, and give up into a fallback on INST/FP.
package main

import (
	"fmt"

	"rocktm"
)

func main() {
	m := rocktm.NewMachine(rocktm.DefaultConfig(2))
	mem := m.Mem()

	// Two bank accounts on separate cache lines, plus a page we will
	// deliberately un-map to provoke ST failures.
	a := mem.AllocLines(8)
	b := mem.AllocLines(8)
	cold := mem.Alloc(1024, 1024) // page-aligned
	mem.Poke(a, 1000)
	mem.Poke(b, 1000)
	mem.Remap(cold, 1024) // drop its TLB mappings and write permission

	hist := map[string]int{}
	m.Run(func(s *rocktm.Strand) {
		if s.ID() != 0 {
			// A second strand creating light conflicting traffic.
			for i := 0; i < 3000; i++ {
				s.Load(a)
				if i%64 == 0 {
					s.CAS(a, 0, 0)
				}
			}
			return
		}
		transfers := 0
		for transfers < 1000 {
			committed, cps := rocktm.TryHTM(s, func(t rocktm.Txn) {
				va := t.Load(a)
				vb := t.Load(b)
				t.Store(a, va-1)
				t.Store(b, vb+1)
				if transfers == 500 {
					// Halfway through, also touch the cold page once.
					t.Store(cold, 42)
				}
			})
			if committed {
				transfers++
				continue
			}
			hist[cps.String()]++
			switch {
			case cps.Has(rocktm.UCTI):
				continue // misleading feedback possible: just retry
			case cps == rocktm.ST:
				// Persistent store-TLB failure: warm with a dummy CAS.
				rocktm.WarmTLB(s, cold, 1024)
			case cps.Has(rocktm.COH):
				s.Advance(64 + int64(s.Rand()%256)) // back off
			case cps.Any(rocktm.INST | rocktm.FP):
				panic("unsupported instruction in this transaction?")
			}
		}
	})

	fmt.Printf("final balances: a=%d b=%d (sum %d, expected 2000)\n",
		m.Mem().Peek(a), m.Mem().Peek(b), m.Mem().Peek(a)+m.Mem().Peek(b))
	fmt.Println("abort reasons observed while retrying:")
	for k, v := range hist {
		fmt.Printf("  %-10s %d\n", k, v)
	}
}
